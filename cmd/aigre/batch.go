// Batch mode: run a manifest of (input, script) jobs concurrently over one
// shared worker budget via aigre.RunBatch, write the optimized outputs, and
// emit a JSON fleet report.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aigre"
	"aigre/internal/flow"
)

// parseManifest reads a batch manifest: one job per line,
//
//	input.aig [@priority] script
//
// where script is a preset name (resyn2, rf_resyn, compress2rs) or an
// inline command sequence like "b; rw; rfz" (the rest of the line). Blank
// lines and #-comments are skipped.
func parseManifest(path string, opts aigre.Options) ([]aigre.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var jobs []aigre.Batch
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"input.aig [@priority] script\", got %q", path, lineno, line)
		}
		input := fields[0]
		rest := fields[1:]
		priority := 0
		if strings.HasPrefix(rest[0], "@") {
			priority, err = strconv.Atoi(rest[0][1:])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad priority %q", path, lineno, rest[0])
			}
			rest = rest[1:]
			if len(rest) == 0 {
				return nil, fmt.Errorf("%s:%d: missing script after priority", path, lineno)
			}
		}
		script := strings.Join(rest, " ")
		switch script {
		case "resyn2":
			script = aigre.ScriptResyn2
		case "rf_resyn":
			script = aigre.ScriptRfResyn
		case "compress2rs":
			script = aigre.ScriptCompressRS
		}
		if _, err := flow.Parse(script); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineno, err)
		}
		n, err := aigre.ReadFile(input)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineno, err)
		}
		jobs = append(jobs, aigre.Batch{
			Name:     strings.TrimSuffix(filepath.Base(input), filepath.Ext(input)),
			AIG:      n,
			Script:   script,
			Priority: priority,
			Options:  opts,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// batchReport is the JSON schema of -report.
type batchReport struct {
	Workers        int           `json:"workers"`
	Finished       int           `json:"finished"`
	Failed         int           `json:"failed"`
	Cancelled      int           `json:"cancelled"`
	TimedOut       int           `json:"timed_out,omitempty"`
	Quarantined    int           `json:"quarantined,omitempty"`
	Retries        int           `json:"retries,omitempty"`
	PeakWorkers    int           `json:"peak_workers"`
	PeakQueueDepth int           `json:"peak_queue_depth"`
	WallNS         time.Duration `json:"wall_ns"`
	JobWallNS      time.Duration `json:"job_wall_ns"`
	ModeledNS      time.Duration `json:"modeled_ns"`
	Utilization    float64       `json:"utilization"`
	// Cache is the batch-wide resynthesis-cache traffic (only populated with
	// -shared-cache, where all jobs consult one cache).
	Cache *aigre.CacheStats `json:"cache,omitempty"`
	Jobs  []batchJobReport  `json:"jobs"`
}

type batchJobReport struct {
	Name        string          `json:"name"`
	Script      string          `json:"script"`
	Error       string          `json:"error,omitempty"`
	Cancelled   bool            `json:"cancelled,omitempty"`
	TimedOut    bool            `json:"timed_out,omitempty"`
	Quarantined bool            `json:"quarantined,omitempty"`
	Attempts    int             `json:"attempts,omitempty"`
	Preemptions int             `json:"preemptions,omitempty"`
	QueuedNS    time.Duration   `json:"queued_ns"`
	WallNS      time.Duration   `json:"wall_ns"`
	ModeledNS   time.Duration   `json:"modeled_ns"`
	NodesBefore int             `json:"nodes_before"`
	NodesAfter  int             `json:"nodes_after"`
	LevelsAfter int             `json:"levels_after"`
	Output      string          `json:"output,omitempty"`
	Incidents   []flow.Incident `json:"incidents,omitempty"`
	// Partition is the job's partition-parallel report (runs with -partition).
	Partition *aigre.PartitionReport `json:"partition,omitempty"`
}

// runBatch is the -batch entry point; it returns the process exit code:
// 0 clean, 1 infrastructure error, 2 bad manifest, 3 degraded (incidents
// recorded), 4 at least one job failed / timed out / cancelled / quarantined.
func runBatch(ctx context.Context, manifest, outdir, reportPath string, bopts aigre.BatchOptions, opts aigre.Options) int {
	msg := os.Stdout
	if reportPath == "-" {
		msg = os.Stderr
	}
	jobs, err := parseManifest(manifest, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		return 2
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
	}
	sharedCache := bopts.SharedCache != nil
	results, m, err := aigre.RunBatch(ctx, jobs, bopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		return 1
	}
	rep := batchReport{
		Workers:        m.Workers,
		Finished:       m.Finished,
		Failed:         m.Failed,
		Cancelled:      m.Cancelled,
		TimedOut:       m.TimedOut,
		Quarantined:    m.Quarantined,
		Retries:        m.Retries,
		PeakWorkers:    m.PeakWorkers,
		PeakQueueDepth: m.PeakQueueDepth,
		WallNS:         m.Wall,
		JobWallNS:      m.JobWall,
		ModeledNS:      m.Modeled,
		Utilization:    m.Utilization,
	}
	if sharedCache {
		cs := m.CacheStats
		rep.Cache = &cs
		fmt.Fprintf(msg, "rcache:  hits=%d misses=%d (%.1f%%) npn-hits=%d npn-misses=%d entries=%d\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.NpnHits, cs.NpnMisses, cs.Entries)
	}
	var infra, casualty, degraded bool
	for _, r := range results {
		jr := batchJobReport{
			Name: r.Name, Script: r.Script, Cancelled: r.Cancelled,
			TimedOut: r.TimedOut, Quarantined: r.Quarantined,
			Attempts: r.Attempts, Preemptions: r.Preemptions,
			QueuedNS: r.Queued, WallNS: r.Wall, ModeledNS: r.Modeled,
			NodesBefore: r.NodesBefore, NodesAfter: r.NodesAfter, LevelsAfter: r.LevelsAfter,
			Incidents: r.Incidents, Partition: r.Partition,
		}
		switch {
		case r.Err != nil:
			jr.Error = r.Err.Error()
			status := "FAILED"
			switch {
			case r.Quarantined:
				status = "QUARANTINED"
			case r.TimedOut:
				status = "timed out"
			case r.Cancelled:
				status = "cancelled"
			}
			fmt.Fprintf(msg, "%-16s %s: %v\n", r.Name, status, r.Err)
			casualty = true
		default:
			retried := ""
			if r.Attempts > 1 {
				retried = fmt.Sprintf("  attempts=%d", r.Attempts)
			}
			fmt.Fprintf(msg, "%-16s and %6d -> %6d  lev %4d  wall=%-12v queued=%v%s\n",
				r.Name, r.NodesBefore, r.NodesAfter, r.LevelsAfter, r.Wall, r.Queued, retried)
			if len(r.Incidents) > 0 {
				degraded = true
			}
		}
		if outdir != "" && r.Err == nil && r.AIG != nil {
			out := filepath.Join(outdir, r.Name+".aig")
			if err := r.AIG.WriteFile(out); err != nil {
				fmt.Fprintln(os.Stderr, "aigre:", err)
				infra = true
			} else {
				jr.Output = out
			}
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	fmt.Fprintf(msg, "batch:   %d jobs (%d ok, %d failed, %d cancelled, %d timed out, %d quarantined, %d retries)  workers=%d peak=%d util=%.0f%%  wall=%v\n",
		len(results), m.Finished, m.Failed, m.Cancelled, m.TimedOut, m.Quarantined, m.Retries,
		m.Workers, m.PeakWorkers, 100*m.Utilization, m.Wall)
	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
		data = append(data, '\n')
		if reportPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(reportPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
	}
	switch {
	case infra:
		return 1
	case casualty:
		return 4
	case degraded:
		return 3
	}
	return 0
}
