// Batch mode: run a manifest of (input, script) jobs concurrently over one
// shared worker budget via aigre.RunBatch, write the optimized outputs, and
// emit a JSON fleet report.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aigre"
	"aigre/internal/flow"
)

// parseManifest reads a batch manifest: one job per line,
//
//	input.aig [@priority] script
//
// where script is a preset name (resyn2, rf_resyn, compress2rs) or an
// inline command sequence like "b; rw; rfz" (the rest of the line). Blank
// lines and #-comments are skipped.
func parseManifest(path string, opts aigre.Options) ([]aigre.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var jobs []aigre.Batch
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"input.aig [@priority] script\", got %q", path, lineno, line)
		}
		input := fields[0]
		rest := fields[1:]
		priority := 0
		if strings.HasPrefix(rest[0], "@") {
			priority, err = strconv.Atoi(rest[0][1:])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad priority %q", path, lineno, rest[0])
			}
			rest = rest[1:]
			if len(rest) == 0 {
				return nil, fmt.Errorf("%s:%d: missing script after priority", path, lineno)
			}
		}
		script := strings.Join(rest, " ")
		switch script {
		case "resyn2":
			script = aigre.ScriptResyn2
		case "rf_resyn":
			script = aigre.ScriptRfResyn
		case "compress2rs":
			script = aigre.ScriptCompressRS
		}
		if _, err := flow.Parse(script); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineno, err)
		}
		n, err := aigre.ReadFile(input)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineno, err)
		}
		jobs = append(jobs, aigre.Batch{
			Name:     strings.TrimSuffix(filepath.Base(input), filepath.Ext(input)),
			AIG:      n,
			Script:   script,
			Priority: priority,
			Options:  opts,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// batchReport is the JSON schema of -report.
type batchReport struct {
	Workers        int           `json:"workers"`
	Finished       int           `json:"finished"`
	Failed         int           `json:"failed"`
	Cancelled      int           `json:"cancelled"`
	PeakWorkers    int           `json:"peak_workers"`
	PeakQueueDepth int           `json:"peak_queue_depth"`
	WallNS         time.Duration `json:"wall_ns"`
	JobWallNS      time.Duration `json:"job_wall_ns"`
	ModeledNS      time.Duration `json:"modeled_ns"`
	Utilization    float64       `json:"utilization"`
	// Cache is the batch-wide resynthesis-cache traffic (only populated with
	// -shared-cache, where all jobs consult one cache).
	Cache *aigre.CacheStats `json:"cache,omitempty"`
	Jobs  []batchJobReport  `json:"jobs"`
}

type batchJobReport struct {
	Name        string          `json:"name"`
	Script      string          `json:"script"`
	Error       string          `json:"error,omitempty"`
	Cancelled   bool            `json:"cancelled,omitempty"`
	QueuedNS    time.Duration   `json:"queued_ns"`
	WallNS      time.Duration   `json:"wall_ns"`
	ModeledNS   time.Duration   `json:"modeled_ns"`
	NodesBefore int             `json:"nodes_before"`
	NodesAfter  int             `json:"nodes_after"`
	LevelsAfter int             `json:"levels_after"`
	Output      string          `json:"output,omitempty"`
	Incidents   []flow.Incident `json:"incidents,omitempty"`
	// Partition is the job's partition-parallel report (runs with -partition).
	Partition *aigre.PartitionReport `json:"partition,omitempty"`
}

// runBatch is the -batch entry point; it returns the process exit code.
func runBatch(ctx context.Context, manifest, outdir, reportPath string, workers, maxJobs int, sharedCache bool, opts aigre.Options) int {
	msg := os.Stdout
	if reportPath == "-" {
		msg = os.Stderr
	}
	jobs, err := parseManifest(manifest, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		return 2
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
	}
	bopts := aigre.BatchOptions{Workers: workers, MaxConcurrentJobs: maxJobs}
	if sharedCache {
		bopts.SharedCache = aigre.NewCache()
	}
	results, m, err := aigre.RunBatch(ctx, jobs, bopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		return 1
	}
	rep := batchReport{
		Workers:        m.Workers,
		Finished:       m.Finished,
		Failed:         m.Failed,
		Cancelled:      m.Cancelled,
		PeakWorkers:    m.PeakWorkers,
		PeakQueueDepth: m.PeakQueueDepth,
		WallNS:         m.Wall,
		JobWallNS:      m.JobWall,
		ModeledNS:      m.Modeled,
		Utilization:    m.Utilization,
	}
	if sharedCache {
		cs := m.CacheStats
		rep.Cache = &cs
		fmt.Fprintf(msg, "rcache:  hits=%d misses=%d (%.1f%%) npn-hits=%d npn-misses=%d entries=%d\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.NpnHits, cs.NpnMisses, cs.Entries)
	}
	exit := 0
	for _, r := range results {
		jr := batchJobReport{
			Name: r.Name, Script: r.Script, Cancelled: r.Cancelled,
			QueuedNS: r.Queued, WallNS: r.Wall, ModeledNS: r.Modeled,
			NodesBefore: r.NodesBefore, NodesAfter: r.NodesAfter, LevelsAfter: r.LevelsAfter,
			Incidents: r.Incidents, Partition: r.Partition,
		}
		switch {
		case r.Err != nil:
			jr.Error = r.Err.Error()
			status := "FAILED"
			if r.Cancelled {
				status = "cancelled"
			}
			fmt.Fprintf(msg, "%-16s %s: %v\n", r.Name, status, r.Err)
			exit = 1
		default:
			fmt.Fprintf(msg, "%-16s and %6d -> %6d  lev %4d  wall=%-12v queued=%v\n",
				r.Name, r.NodesBefore, r.NodesAfter, r.LevelsAfter, r.Wall, r.Queued)
		}
		if outdir != "" && r.Err == nil && r.AIG != nil {
			out := filepath.Join(outdir, r.Name+".aig")
			if err := r.AIG.WriteFile(out); err != nil {
				fmt.Fprintln(os.Stderr, "aigre:", err)
				exit = 1
			} else {
				jr.Output = out
			}
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	fmt.Fprintf(msg, "batch:   %d jobs (%d ok, %d failed, %d cancelled)  workers=%d peak=%d util=%.0f%%  wall=%v\n",
		len(results), m.Finished, m.Failed, m.Cancelled, m.Workers, m.PeakWorkers, 100*m.Utilization, m.Wall)
	if reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
		data = append(data, '\n')
		if reportPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(reportPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return 1
		}
	}
	return exit
}
