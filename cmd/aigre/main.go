// Command aigre is a small ABC-like driver: it reads an AIGER file, runs an
// optimization script in sequential (ABC-style) or parallel (GPU-model)
// mode, prints statistics, and optionally writes the result and checks
// equivalence. With -batch it instead runs a whole manifest of jobs
// concurrently over one shared worker budget.
//
// Usage:
//
//	aigre -in design.aig -script "b; rw; rf; b" -parallel -out opt.aig
//	aigre -in design.aig -resyn2 -cec
//	aigre -batch jobs.txt -parallel -workers 8 -outdir opt/ -report report.json
//	aigre -batch jobs.txt -parallel -job-timeout 1m -retries 2 -journal run.jsonl
//
// Exit codes (for automation):
//
//	0  clean: every run/job completed without incidents
//	1  hard error: I/O, parse, or equivalence-check failure
//	2  usage error
//	3  degraded: all jobs completed, but contained incidents were recorded
//	4  job casualty: at least one batch job failed, timed out, was
//	   cancelled, or was quarantined by the supervisor
//
// Signals: the first SIGINT/SIGTERM cancels the run gracefully — in-flight
// work stops at the next kernel-launch boundary, batch jobs report
// Cancelled, and the usual exit-code taxonomy applies. A second signal
// exits immediately with code 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aigre"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/journal"
)

func main() {
	var (
		in       = flag.String("in", "", "input AIGER file (required unless -batch)")
		batch    = flag.String("batch", "", "batch manifest file: one \"input.aig [@priority] script\" per line")
		outdir   = flag.String("outdir", "", "directory for batch outputs (default: none written)")
		report   = flag.String("report", "", "write the batch report as JSON to this file (\"-\" = stdout)")
		maxJobs  = flag.Int("max-jobs", 0, "max concurrently running batch jobs (0 = workers)")
		shCache  = flag.Bool("shared-cache", false, "share one resynthesis cache across all batch jobs (batch mode)")
		timeout  = flag.Duration("timeout", 0, "overall run deadline, e.g. 30s (0 = none)")
		jobTmo   = flag.Duration("job-timeout", 0, "per-job attempt deadline, e.g. 10s (batch mode; 0 = none)")
		retries  = flag.Int("retries", 0, "retry budget per job for transient faults, timeouts, and stuck preemptions (batch mode)")
		stuckTmo = flag.Duration("stuck-timeout", 0, "watchdog threshold: preempt a job whose kernel heartbeat stalls this long (batch mode; 0 = off)")
		journalF = flag.String("journal", "", "append every supervision event (attempts, incidents, retries, quarantines) to this JSONL file")
		out      = flag.String("out", "", "output AIGER file (optional; .aag = ASCII)")
		script   = flag.String("script", "", "optimization script, e.g. \"b; rw; rfz\"")
		resyn2   = flag.Bool("resyn2", false, "run the resyn2 sequence")
		rfResyn  = flag.Bool("rf_resyn", false, "run the rf_resyn sequence")
		parallel = flag.Bool("parallel", false, "use the parallel (GPU-model) algorithms")
		workers  = flag.Int("workers", 0, "worker goroutines for the simulated device (0 = GOMAXPROCS)")
		maxCut   = flag.Int("maxcut", 12, "refactoring cut-size limit")
		passes   = flag.Int("passes", 0, "parallel refactoring passes per rf/rfz command (0 = 1)")
		zeroGain = flag.Bool("zerogain", false, "sequential rw/rf accept zero-gain replacements (like rwz/rfz)")
		profile  = flag.Bool("profile", false, "print the per-kernel device profile (parallel mode)")
		profJSON = flag.String("profile-json", "", "write the profile report as JSON to this file (\"-\" = stdout)")
		partMode = flag.String("partition", "off", "partition-parallel optimization: off, cones, or levels")
		partSize = flag.Int("partition-size", 0, "partition size target in AND nodes (0 = 100000)")
		partRnds = flag.Int("partition-rounds", 0, "max seam-conflict rollback rounds before full rollback (0 = 2)")
		verify   = flag.Bool("verify", false, "full per-command equivalence gate during script runs (default: sampling gate)")
		inject   = flag.String("inject", "", "inject a deterministic fault: \"kernel-pattern:N:panic\", \"...:corrupt\", or \"...:stall\" (chaos testing, parallel mode)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		cecFlag  = flag.Bool("cec", false, "verify equivalence of the result against the input")
		cecWith  = flag.String("cec-with", "", "check equivalence of -in against this AIGER file and exit")
		verbose  = flag.Bool("v", false, "print per-command statistics")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "aigre: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	if *passes < 0 {
		fmt.Fprintf(os.Stderr, "aigre: -passes must be >= 0 (got %d)\n", *passes)
		os.Exit(2)
	}
	pmode, err := aigre.ParsePartitionMode(*partMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	popts := aigre.PartitionOptions{Mode: pmode, TargetSize: *partSize, MaxConflictRounds: *partRnds}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// First SIGINT/SIGTERM cancels the run gracefully: in-flight work stops
	// at the next kernel-launch boundary and partial results are reported
	// (batch jobs come back Cancelled). A second signal exits immediately
	// with code 1.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "aigre: %s: cancelling (signal again to exit immediately)\n", s)
		cancel()
		s = <-sigs
		fmt.Fprintf(os.Stderr, "aigre: %s: immediate exit\n", s)
		os.Exit(1)
	}()
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "aigre: -retries must be >= 0 (got %d)\n", *retries)
		os.Exit(2)
	}
	// Profiles must be written on every exit path, and main exits through
	// os.Exit (which skips defers) — route all exits through finishProfiles.
	fatal(startProfiles(*cpuProf, *memProf))
	if *batch != "" {
		opts := aigre.Options{
			Parallel:  *parallel,
			MaxCut:    *maxCut,
			Passes:    *passes,
			ZeroGain:  *zeroGain,
			Verify:    *verify,
			Partition: popts,
		}
		if *inject != "" {
			// Every job of the batch gets its own copy of the plan, so a
			// chaos run injects the fault fleet-wide, one firing per job.
			plan, err := parseInject(*inject)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aigre:", err)
				os.Exit(2)
			}
			opts.FaultPlans = []gpu.FaultPlan{plan}
		}
		bopts := aigre.BatchOptions{
			Workers:           *workers,
			MaxConcurrentJobs: *maxJobs,
			JournalPath:       *journalF,
			Policy: aigre.Policy{
				JobTimeout:   *jobTmo,
				Retries:      *retries,
				StuckTimeout: *stuckTmo,
				// Degraded completions are worth a fresh attempt whenever a
				// budget exists: the CLI's goal is the cleanest batch the
				// budget can buy.
				RetryDegraded: *retries > 0,
			},
		}
		if *shCache {
			bopts.SharedCache = aigre.NewCache()
		}
		exit(runBatch(ctx, *batch, *outdir, *report, bopts, opts))
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "aigre: -in is required (or -batch)")
		flag.Usage()
		os.Exit(2)
	}
	// With -profile-json - the JSON report owns stdout; status lines move to
	// stderr so the output stays pipeable into jq and friends.
	msg := os.Stdout
	if *profJSON == "-" {
		msg = os.Stderr
	}
	n, err := aigre.ReadFile(*in)
	fatal(err)
	fmt.Fprintln(msg, "input:  ", n.Stats())

	if *cecWith != "" {
		other, err := aigre.ReadFile(*cecWith)
		fatal(err)
		fmt.Fprintln(msg, "other:  ", other.Stats())
		eq, err := n.EquivalentTo(other)
		fatal(err)
		if !eq {
			fmt.Fprintln(msg, "cec:     NOT equivalent")
			exit(1)
		}
		fmt.Fprintln(msg, "cec:     equivalent")
		finishProfiles()
		return
	}

	s := *script
	switch {
	case *resyn2:
		s = flow.Resyn2
	case *rfResyn:
		s = flow.RfResyn
	case s == "":
		// statistics only
	}
	cur := n
	degraded := false
	if s != "" {
		opts := aigre.Options{
			Parallel:  *parallel,
			Workers:   *workers,
			MaxCut:    *maxCut,
			Passes:    *passes,
			ZeroGain:  *zeroGain,
			Verify:    *verify,
			Partition: popts,
		}
		if *inject != "" {
			plan, err := parseInject(*inject)
			fatal(err)
			opts.FaultPlans = []gpu.FaultPlan{plan}
		}
		if *resyn2 {
			opts.RwzPasses = 2
		}
		res, err := cur.Run(ctx, s, opts)
		if *journalF != "" {
			if jerr := journalSingleRun(*journalF, n.Name(), s, res, err); jerr != nil {
				fmt.Fprintln(os.Stderr, "aigre:", jerr)
			}
		}
		fatal(err)
		cur = res.AIG
		if len(res.Incidents) > 0 {
			degraded = true
		}
		if *verbose {
			for _, t := range res.Timings {
				fmt.Fprintf(msg, "  %-4s wall=%-12v modeled=%-12v dedup=%-12v and=%d lev=%d\n",
					t.Command, t.Wall, t.Modeled, t.DedupModeled, t.NodesAfter, t.LevelsAfter)
			}
		}
		mode := "sequential"
		if *parallel {
			mode = "parallel"
		}
		fmt.Fprintf(msg, "script: %q (%s)  wall=%v modeled=%v\n", s, mode, res.Wall, res.Modeled)
		if p := res.Partition; p != nil {
			fmt.Fprintf(msg, "partition: mode=%s parts=%d shared=%d conflicts=%d/%d rollbacks=%d rounds=%d\n",
				p.Mode, len(p.Parts), p.SharedNodes, p.ConflictsBroken, p.ConflictsFound, p.Rollbacks, p.StitchRounds)
			if *verbose {
				for _, ps := range p.Parts {
					span := fmt.Sprintf("po=%d", ps.POs)
					if p.Mode == "levels" {
						span = fmt.Sprintf("lev=%d..%d", ps.LevelLo, ps.LevelHi)
					}
					rolled := ""
					if ps.RolledBack {
						rolled = "  ROLLED BACK: " + ps.Note
					}
					fmt.Fprintf(msg, "  part %-3d %-12s and %7d -> %7d  conflicts=%-5d wall=%-12v queued=%v%s\n",
						ps.Index, span, ps.NodesIn, ps.NodesOut, ps.ConflictsBroken, ps.WallNS, ps.QueuedNS, rolled)
				}
			}
		}
		for _, inc := range res.Incidents {
			fmt.Fprintln(msg, "incident:", inc)
		}
		fmt.Fprintln(msg, "output: ", cur.Stats())
		if *profile {
			cs := res.CacheStats
			fmt.Fprintf(msg, "rcache:  hits=%d misses=%d (%.1f%%) npn-hits=%d npn-misses=%d evictions=%d entries=%d\n",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.NpnHits, cs.NpnMisses, cs.Evictions, cs.Entries)
			if res.Profile == nil {
				fmt.Fprintln(msg, "profile: (no device profile; run with -parallel)")
			} else {
				fmt.Fprintln(msg, "\nper-kernel device profile:")
				fmt.Fprint(msg, gpu.FormatProfile(res.Profile))
			}
		}
		if *profJSON != "" {
			fatal(writeProfileJSON(*profJSON, s, mode, res))
		}
	}
	if *cecFlag && s != "" {
		eq, err := cur.EquivalentTo(n)
		fatal(err)
		if !eq {
			fmt.Fprintln(os.Stderr, "aigre: EQUIVALENCE CHECK FAILED")
			exit(1)
		}
		fmt.Fprintln(msg, "cec:     equivalent")
	}
	if *out != "" {
		fatal(cur.WriteFile(*out))
		fmt.Fprintln(msg, "wrote:  ", *out)
	}
	finishProfiles()
	if degraded {
		os.Exit(3)
	}
}

// journalSingleRun appends a single (non-batch) run's history to the durable
// journal: one attempt entry, every contained incident, and the outcome, in
// the same schema batch supervision writes.
func journalSingleRun(path, name, script string, res aigre.Result, runErr error) error {
	j, err := journal.Create(path)
	if err != nil {
		return err
	}
	defer j.Close()
	if name == "" {
		name = "run"
	}
	j.Append(journal.Entry{Job: name, Attempt: 1, Event: journal.EventAttempt, Detail: script})
	for i := range res.Incidents {
		inc := res.Incidents[i]
		inc.Attempt = 1
		j.Append(journal.Entry{Job: name, Attempt: 1, Event: journal.EventIncident,
			Class: inc.Class, Detail: inc.Detail, Incident: &inc})
	}
	if runErr != nil {
		return j.Append(journal.Entry{Job: name, Attempt: 1, Event: journal.EventFail, Detail: runErr.Error()})
	}
	return j.Append(journal.Entry{Job: name, Attempt: 1, Event: journal.EventDone})
}

// profileReport is the JSON schema of -profile-json.
type profileReport struct {
	Script    string              `json:"script"`
	Mode      string              `json:"mode"`
	WallNS    time.Duration       `json:"wall_ns"`
	ModeledNS time.Duration       `json:"modeled_ns"`
	Kernels   []gpu.KernelProfile `json:"kernels"`
	Commands  []commandReport     `json:"commands"`
	// Cache is the resynthesis-cache traffic of this run (hit/miss/eviction
	// counters for the program compartment, npn_hits/npn_misses for NPN
	// canonization).
	Cache aigre.CacheStats `json:"cache"`
	// Incidents are the contained failures of the guarded run (omitted when
	// the run was clean).
	Incidents []flow.Incident `json:"incidents,omitempty"`
	// Partition is the partition-parallel report with its per-partition rows
	// (only for runs with -partition).
	Partition *aigre.PartitionReport `json:"partition,omitempty"`
}

type commandReport struct {
	Command   string              `json:"command"`
	WallNS    time.Duration       `json:"wall_ns"`
	ModeledNS time.Duration       `json:"modeled_ns"`
	DedupNS   time.Duration       `json:"dedup_modeled_ns"`
	Nodes     int                 `json:"nodes_after"`
	Levels    int                 `json:"levels_after"`
	Kernels   []gpu.KernelProfile `json:"kernels,omitempty"`
}

func writeProfileJSON(path, script, mode string, res aigre.Result) error {
	rep := profileReport{
		Script:    script,
		Mode:      mode,
		WallNS:    res.Wall,
		ModeledNS: res.Modeled,
		Kernels:   res.Profile,
		Cache:     res.CacheStats,
		Incidents: res.Incidents,
		Partition: res.Partition,
	}
	for _, t := range res.Timings {
		rep.Commands = append(rep.Commands, commandReport{
			Command:   t.Command,
			WallNS:    t.Wall + t.DedupWall,
			ModeledNS: t.Modeled,
			DedupNS:   t.DedupModeled,
			Nodes:     t.NodesAfter,
			Levels:    t.LevelsAfter,
			Kernels:   t.Kernels,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// parseInject parses the -inject spec "kernel-pattern:N:kind".
func parseInject(s string) (gpu.FaultPlan, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return gpu.FaultPlan{}, fmt.Errorf("bad -inject %q, want \"kernel-pattern:N:panic|corrupt|stall\"", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return gpu.FaultPlan{}, fmt.Errorf("bad -inject launch ordinal %q (want >= 1)", parts[1])
	}
	var kind gpu.FaultKind
	switch parts[2] {
	case "panic":
		kind = gpu.FaultPanic
	case "corrupt":
		kind = gpu.FaultCorrupt
	case "stall":
		kind = gpu.FaultStall
	default:
		return gpu.FaultPlan{}, fmt.Errorf("bad -inject kind %q (want panic, corrupt, or stall)", parts[2])
	}
	return gpu.FaultPlan{Kernel: parts[0], Nth: n, Kind: kind}, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		exit(1)
	}
}

// Profiling state for -cpuprofile/-memprofile. main exits through os.Exit on
// most paths (which skips defers), so every such path goes through exit(),
// which flushes the profiles first.
var (
	cpuProfFile *os.File
	memProfPath string
)

func startProfiles(cpu, mem string) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuProfFile = f
	}
	memProfPath = mem
	return nil
}

func finishProfiles() {
	if cpuProfFile != nil {
		pprof.StopCPUProfile()
		cpuProfFile.Close()
		cpuProfFile = nil
	}
	if memProfPath != "" {
		path := memProfPath
		memProfPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the live-heap numbers
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "aigre:", err)
		}
	}
}

// exit flushes any requested profiles, then terminates with code.
func exit(code int) {
	finishProfiles()
	os.Exit(code)
}
