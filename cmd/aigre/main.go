// Command aigre is a small ABC-like driver: it reads an AIGER file, runs an
// optimization script in sequential (ABC-style) or parallel (GPU-model)
// mode, prints statistics, and optionally writes the result and checks
// equivalence.
//
// Usage:
//
//	aigre -in design.aig -script "b; rw; rf; b" -parallel -out opt.aig
//	aigre -in design.aig -resyn2 -cec
package main

import (
	"flag"
	"fmt"
	"os"

	"aigre"
	"aigre/internal/flow"
)

func main() {
	var (
		in       = flag.String("in", "", "input AIGER file (required)")
		out      = flag.String("out", "", "output AIGER file (optional; .aag = ASCII)")
		script   = flag.String("script", "", "optimization script, e.g. \"b; rw; rfz\"")
		resyn2   = flag.Bool("resyn2", false, "run the resyn2 sequence")
		rfResyn  = flag.Bool("rf_resyn", false, "run the rf_resyn sequence")
		parallel = flag.Bool("parallel", false, "use the parallel (GPU-model) algorithms")
		workers  = flag.Int("workers", 0, "worker goroutines for the simulated device (0 = GOMAXPROCS)")
		maxCut   = flag.Int("maxcut", 12, "refactoring cut-size limit")
		cecFlag  = flag.Bool("cec", false, "verify equivalence of the result against the input")
		cecWith  = flag.String("cec-with", "", "check equivalence of -in against this AIGER file and exit")
		verbose  = flag.Bool("v", false, "print per-command statistics")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "aigre: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	n, err := aigre.ReadFile(*in)
	fatal(err)
	fmt.Println("input:  ", n.Stats())

	if *cecWith != "" {
		other, err := aigre.ReadFile(*cecWith)
		fatal(err)
		fmt.Println("other:  ", other.Stats())
		eq, err := n.EquivalentTo(other)
		fatal(err)
		if !eq {
			fmt.Println("cec:     NOT equivalent")
			os.Exit(1)
		}
		fmt.Println("cec:     equivalent")
		return
	}

	s := *script
	switch {
	case *resyn2:
		s = flow.Resyn2
	case *rfResyn:
		s = flow.RfResyn
	case s == "":
		// statistics only
	}
	cur := n
	if s != "" {
		opts := aigre.Options{Parallel: *parallel, Workers: *workers, MaxCut: *maxCut}
		if *resyn2 {
			opts.RwzPasses = 2
		}
		res, err := cur.Run(s, opts)
		fatal(err)
		cur = res.AIG
		if *verbose {
			for _, t := range res.Timings {
				fmt.Printf("  %-4s wall=%-12v modeled=%-12v dedup=%-12v and=%d lev=%d\n",
					t.Command, t.Wall, t.Modeled, t.DedupModeled, t.NodesAfter, t.LevelsAfter)
			}
		}
		mode := "sequential"
		if *parallel {
			mode = "parallel"
		}
		fmt.Printf("script: %q (%s)  wall=%v modeled=%v\n", s, mode, res.Wall, res.Modeled)
		fmt.Println("output: ", cur.Stats())
	}
	if *cecFlag && s != "" {
		eq, err := cur.EquivalentTo(n)
		fatal(err)
		if !eq {
			fmt.Fprintln(os.Stderr, "aigre: EQUIVALENCE CHECK FAILED")
			os.Exit(1)
		}
		fmt.Println("cec:     equivalent")
	}
	if *out != "" {
		fatal(cur.WriteFile(*out))
		fmt.Println("wrote:  ", *out)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigre:", err)
		os.Exit(1)
	}
}
