// Command benchgen generates the benchmark suite (or a single circuit) as
// AIGER files: from-scratch equivalents of the paper's EPFL/IWLS benchmark
// families, optionally enlarged by ABC-style doubling.
//
// Usage:
//
//	benchgen -out bench/ -scale 4            # the full 14-circuit suite
//	benchgen -out bench/ -name div -scale 2  # one family
//	benchgen -list                           # show the suite
//	benchgen -out bench/ -deep-narrow -chains 64 -steps 4000
//	                                         # adversarial million-node
//	                                         # deep/narrow partition stressor
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aigre"
	"aigre/internal/bench"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory")
		name   = flag.String("name", "", "generate only this benchmark (default: all)")
		scale  = flag.Int("scale", 1, "size scale factor (powers of two enlarge via doubling)")
		ascii  = flag.Bool("aag", false, "write ASCII AIGER instead of binary")
		list   = flag.Bool("list", false, "list available benchmarks and exit")
		deep   = flag.Bool("deep-narrow", false, "generate the adversarial deep/narrow partition stressor instead of the suite")
		chains = flag.Int("chains", 64, "deep-narrow: number of independent output chains")
		steps  = flag.Int("steps", 4000, "deep-narrow: XOR-accumulator steps per chain (4 AND nodes each)")
	)
	flag.Parse()
	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	ext := ".aig"
	if *ascii {
		ext = ".aag"
	}
	if *deep {
		a := bench.DeepNarrow(*chains, *steps)
		n := aigre.FromInternal(a)
		path := filepath.Join(*out, a.Name+ext)
		if err := n.WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s -> %-24s %v\n", a.Name, path, n.Stats())
		return
	}
	for _, c := range bench.Suite(*scale) {
		if *name != "" && c.Name != *name {
			continue
		}
		a := c.Build()
		n := aigre.FromInternal(a)
		path := filepath.Join(*out, c.Name+ext)
		if err := n.WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s -> %-24s %v\n", c.Name, path, n.Stats())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
